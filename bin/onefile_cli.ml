(* Command-line driver for the reproduction's operational tools:

     onefile_cli kill    --procs 8 --rounds 30000 --kill-every 500 --wf
     onefile_cli crash   --trials 50 --evict 0.5
     onefile_cli stats   --threads 8 --swaps 16
     onefile_cli costs   --nw 8

   The benchmark figures live in bench/main.exe; this binary exposes the
   resilience experiments and instrumentation individually. *)

open Cmdliner

let kill_cmd =
  let procs =
    Arg.(value & opt int 8 & info [ "procs" ] ~doc:"Number of processes.")
  in
  let rounds =
    Arg.(value & opt int 30_000 & info [ "rounds" ] ~doc:"Simulated rounds.")
  in
  let kill_every =
    Arg.(
      value
      & opt int 500
      & info [ "kill-every" ] ~doc:"Kill one process every N rounds (0 = never).")
  in
  let wf = Arg.(value & flag & info [ "wf" ] ~doc:"Use the wait-free PTM.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.") in
  let run procs rounds kill_every wf seed =
    let r =
      Workloads.Kill_test.run ~wf ~processes:procs ~rounds
        ~kill_every:(if kill_every = 0 then None else Some kill_every)
        ~items:16 ~seed ()
    in
    Format.printf
      "transfers=%d kills=%d torn=%d final_total_ok=%b leaked_cells=%d@."
      r.transfers r.kills r.torn_observations r.final_total_ok r.leaked_cells;
    if r.torn_observations > 0 || (not r.final_total_ok) || r.leaked_cells <> 0
    then exit 1
  in
  Cmd.v
    (Cmd.info "kill" ~doc:"Two-queue transfer under process kills (Fig. 12 right)")
    Term.(const run $ procs $ rounds $ kill_every $ wf $ seed)

let crash_cmd =
  let trials =
    Arg.(value & opt int 40 & info [ "trials" ] ~doc:"Crash points to sweep.")
  in
  let evict =
    Arg.(
      value
      & opt float 0.0
      & info [ "evict" ] ~doc:"Probability a dirty line survives the crash.")
  in
  let run trials evict =
    let show label r = Format.printf "%-16s %a@." label Workloads.Crash_campaign.pp r in
    show "OF-LF sps" (Workloads.Crash_campaign.onefile_sps ~wf:false ~trials ~evict ());
    show "OF-WF sps" (Workloads.Crash_campaign.onefile_sps ~wf:true ~trials ~evict ());
    show "OF-LF queues" (Workloads.Crash_campaign.onefile_queues ~wf:false ~trials ~evict ());
    show "OF-WF queues" (Workloads.Crash_campaign.onefile_queues ~wf:true ~trials ~evict ());
    show "RomulusLog" (Workloads.Crash_campaign.romulus_sps ~lr:false ~trials ~evict ());
    show "RomulusLR" (Workloads.Crash_campaign.romulus_sps ~lr:true ~trials ~evict ());
    show "PMDK" (Workloads.Crash_campaign.pmdk_sps ~trials ~evict ())
  in
  Cmd.v
    (Cmd.info "crash" ~doc:"Whole-system crash-injection campaigns")
    Term.(const run $ trials $ evict)

let stats_cmd =
  let threads = Arg.(value & opt int 8 & info [ "threads" ] ~doc:"Workers.") in
  let swaps = Arg.(value & opt int 16 & info [ "swaps" ] ~doc:"Swaps per tx.") in
  let run threads swaps =
    let module Lf = Onefile.Onefile_lf in
    let module S = Structures.Sps.Make (Lf) in
    let tm = Lf.create ~max_threads:(threads + 1) () in
    let s = S.create tm ~root:0 ~n:1024 in
    let body i () =
      let rng = Runtime.Rng.create i in
      while Runtime.Sched.now () < 20_000 do
        S.swaps_tx s rng swaps
      done
    in
    ignore
      (Runtime.Sched.run ~cores:8 ~max_rounds:20_000
         (Array.init threads (fun i -> body i)));
    Format.printf "region stats after 20k rounds, %d threads, %d swaps/tx:@."
      threads swaps;
    Format.printf "  %a@." Pmem.Pstats.pp (Pmem.Region.stats (Lf.region tm))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Run persistent SPS and dump the instruction counters")
    Term.(const run $ threads $ swaps)

let shards_cmd =
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~doc:"Shard count (must divide 16: 1, 2, 4 or 8).")
  in
  let cross =
    Arg.(
      value & opt int 10
      & info [ "cross-shard" ]
          ~doc:"Percentage of transactions that transfer across two shards.")
  in
  let threads = Arg.(value & opt int 8 & info [ "threads" ] ~doc:"Workers.") in
  let rounds =
    Arg.(value & opt int 5_000 & info [ "rounds" ] ~doc:"Simulated rounds.")
  in
  let wf = Arg.(value & flag & info [ "wf" ] ~doc:"Use the wait-free PTM.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.") in
  let split =
    Arg.(
      value & opt (some string) None
      & info [ "split" ] ~docv:"SRC:DST"
          ~doc:
            "Perform one live split (rehome the upper half of shard SRC's \
             root block onto DST) under the traffic mix, and print the \
             shard map before and after.")
  in
  let merge =
    Arg.(
      value & opt (some string) None
      & info [ "merge" ] ~docv:"SRC:DST"
          ~doc:
            "Perform one live merge (retire every range hosted by SRC whose \
             native home is DST) under the traffic mix, and print the shard \
             map before and after.")
  in
  let parse_pair opt v =
    match String.split_on_char ':' v with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some s, Some d -> (s, d)
        | _ ->
            Format.eprintf "onefile_cli shards: %s wants SRC:DST, got %s@." opt v;
            exit 2)
    | _ ->
        Format.eprintf "onefile_cli shards: %s wants SRC:DST, got %s@." opt v;
        exit 2
  in
  let pp_map ppf entries =
    if Array.length entries = 0 then
      Format.fprintf ppf "(empty: every range natively homed)"
    else
      Array.iteri
        (fun i (lo, len, shard, base) ->
          Format.fprintf ppf "%s[%d..%d] -> shard %d @@ %d"
            (if i = 0 then "" else "; ")
            lo (lo + len - 1) shard base)
        entries
  in
  let run_migration ~wf ~shards ~threads ~rounds ~seed action =
    let module SB = Workloads.Shard_bench in
    let te = Runtime.Telemetry.create () in
    let r =
      try
        SB.run_elastic_action ~wf ~telemetry:te ~shards ~action ~threads
          ~rounds ~seed ()
      with Invalid_argument m ->
        Format.eprintf "onefile_cli shards: %s@." m;
        exit 2
    in
    Format.printf "%s router, %d shards, %d threads, %d rounds, live %a:@."
      (if wf then "OF-WF" else "OF-LF")
      shards threads rounds SB.pp_action action;
    Format.printf "  map before  (epoch %d)  %a@." r.SB.e_epoch_before pp_map
      r.SB.e_map_before;
    List.iter
      (fun (a, outcome) ->
        Format.printf "  %a -> %s@." SB.pp_action a
          (match outcome with
          | `Ok -> "ok"
          | `Busy -> "busy (another migration was live)"
          | `Invalid m -> "invalid: " ^ m))
      r.SB.e_outcomes;
    Format.printf "  map after   (epoch %d)  %a@." r.SB.e_epoch pp_map r.SB.e_map;
    Format.printf "  traffic     %d updates, %d read-only sums%s@." r.SB.e_updates
      r.SB.e_ro
      (if r.SB.e_migrations > 0 then
         Printf.sprintf " (%d read-only commits inside the migration window)"
           r.SB.e_min_ro
       else "");
    let migs = Runtime.Telemetry.get te "router.migrations" in
    let stall = Runtime.Telemetry.span_summary te "router.migration_stall" in
    Format.printf
      "  telemetry   router.migrations=%d router.map_epoch=%d \
       router.migration_stall: count=%d mean=%.1f max=%d@."
      migs
      (Runtime.Telemetry.get te "router.map_epoch")
      stall.Runtime.Telemetry.count stall.Runtime.Telemetry.mean
      stall.Runtime.Telemetry.max;
    Format.printf "  account total conserved: %b; snapshots consistent: %b@."
      r.SB.e_conserved r.SB.e_ro_consistent;
    let ok =
      r.SB.e_conserved && r.SB.e_ro_consistent
      && List.for_all (fun (_, o) -> o = `Ok) r.SB.e_outcomes
    in
    if not ok then exit 1
  in
  let run shards cross threads rounds wf seed split merge =
    if cross < 0 || cross > 100 then (
      Format.eprintf "onefile_cli shards: --cross-shard must be 0..100@.";
      exit 2);
    match (split, merge) with
    | Some _, Some _ ->
        Format.eprintf
          "onefile_cli shards: --split and --merge are mutually exclusive@.";
        exit 2
    | Some v, None ->
        let s, d = parse_pair "--split" v in
        run_migration ~wf ~shards ~threads ~rounds ~seed
          (Workloads.Shard_bench.Split (s, d))
    | None, Some v ->
        let s, d = parse_pair "--merge" v in
        run_migration ~wf ~shards ~threads ~rounds ~seed
          (Workloads.Shard_bench.Merge (s, d))
    | None, None ->
        let r =
          try Workloads.Shard_bench.run ~wf ~shards ~cross_pct:cross ~threads
                ~rounds ~seed ()
          with Invalid_argument m ->
            Format.eprintf "onefile_cli shards: %s@." m;
            exit 2
        in
        let open Workloads.Shard_bench in
        Format.printf
          "%s router, %d shard%s, %d%% cross-shard, %d threads, %d rounds:@."
          (if wf then "OF-WF" else "OF-LF")
          shards
          (if shards = 1 then "" else "s")
          cross threads rounds;
        Format.printf
          "  committed txs  %d (%.1f ops/kround), of which cross-shard %d@."
          r.ops
          (1000.0 *. float_of_int r.ops /. float_of_int rounds)
          r.cross;
        Format.printf "  pwb per tx     %.1f@."
          (float_of_int r.pwb /. float_of_int (max 1 r.ops));
        Format.printf "  shard commits  [%s]@."
          (String.concat "; "
             (Array.to_list (Array.map string_of_int r.per_shard_commits)));
        Format.printf "  account total conserved after post-run recovery: %b@."
          r.conserved;
        if not r.conserved then exit 1
  in
  Cmd.v
    (Cmd.info "shards"
       ~doc:
         "Sharded transfer workload over the cross-shard router (Tm_shard); \
          --split/--merge perform one live range migration under traffic")
    Term.(const run $ shards $ cross $ threads $ rounds $ wf $ seed $ split $ merge)

let costs_cmd =
  let nw = Arg.(value & opt int 8 & info [ "nw" ] ~doc:"Modified words per tx.") in
  let run nw =
    Workloads.Table_costs.print Format.std_formatter
      (Workloads.Table_costs.measure_all ~nw)
  in
  Cmd.v
    (Cmd.info "costs" ~doc:"Per-transaction persistence-cost table (§V-B)")
    Term.(const run $ nw)

let () =
  let doc = "OneFile reproduction: resilience and instrumentation tools" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "onefile_cli" ~doc)
          [ kill_cmd; crash_cmd; stats_cmd; shards_cmd; costs_cmd ]))
