(* Schedule/crash-point explorer CLI over Workloads.Explorer.

     explore [--strategy exhaustive|pct|crash] [options]
     explore --replay TRACE.json

   Generates random transaction programs (Workloads.Proggen), explores
   their schedule space (or crash points) on OneFile and diffs every
   execution against the sequential oracle; the first failure is shrunk to
   a minimal program + schedule (+ crash point) and printed, optionally
   written as a JSON trace replayable with --replay.

   Exit status: 0 = everything explored passed (or a --replay trace no
   longer fails), 1 = failure found (or a --replay trace still fails),
   2 = usage error. *)

module E = Workloads.Explorer
module Proggen = Workloads.Proggen
module J = Workloads.Bench_json

let usage () =
  prerr_endline
    {|usage: explore [options]
  --strategy S     exhaustive | pct | crash      (default exhaustive)
  --wf             explore OneFile-WF            (default OneFile-LF)
  --threads N      fibers the program is dealt onto (default 2)
  --shards N       shard count; >1 routes through Tm_shard and generates
                   cross-shard transfer ops (default 1)
  --seed N         first program seed (default 1)
  --seeds N        number of program seeds to sweep (default 1)
  --txns N         max transactions per program (default 6)
  --ops N          max operations per transaction (default 3)
  --pbound N       exhaustive: preemption bound (default 2)
  --executions N   pct: schedules per program (default 200);
                   exhaustive: execution budget (default unlimited)
  --depth N        pct: bug depth (default 3)
  --sites S        crash: persist | every        (default persist)
  --max-sites N    crash: subsample to N sites   (default all)
  --persistent     persistent region for interleaving strategies
  --no-sanitize    do not attach the Tmcheck sanitizer
  --plant F        plant a fault: durability | lost-update | stale-dedup
                   | torn-commit-record | torn-batch-record
                   | stale-ro-snapshot | torn-migration
                   (the torn-record and torn-migration faults need
                   --shards >= 2)
  --max-steps N    per-execution step budget (default 50000)
  --no-shrink      print the raw failure without minimizing it
  --out FILE       write the (shrunk) failing trace as JSON
  --replay FILE    replay a trace written by --out and exit|};
  exit 2

let int_arg name v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> n
  | _ ->
      prerr_endline ("explore: bad value for " ^ name ^ ": " ^ v);
      exit 2

let () =
  let strategy = ref "exhaustive" in
  let wf = ref false in
  let threads = ref 2 in
  let shards = ref 1 in
  let seed = ref 1 in
  let seeds = ref 1 in
  let txns = ref 6 in
  let ops = ref 3 in
  let pbound = ref 2 in
  let executions = ref None in
  let depth = ref 3 in
  let sites = ref `Persist in
  let max_sites = ref None in
  let persistent = ref false in
  let sanitize = ref true in
  let fault = ref E.No_fault in
  let max_steps = ref 50_000 in
  let do_shrink = ref true in
  let out = ref None in
  let replay_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--strategy" :: v :: rest ->
        (match v with
        | "exhaustive" | "pct" | "crash" -> strategy := v
        | _ ->
            prerr_endline ("explore: unknown strategy " ^ v);
            exit 2);
        parse rest
    | "--wf" :: rest ->
        wf := true;
        parse rest
    | "--threads" :: v :: rest ->
        threads := max 1 (int_arg "--threads" v);
        parse rest
    | "--shards" :: v :: rest ->
        shards := max 1 (int_arg "--shards" v);
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_arg "--seed" v;
        parse rest
    | "--seeds" :: v :: rest ->
        seeds := int_arg "--seeds" v;
        parse rest
    | "--txns" :: v :: rest ->
        txns := max 1 (int_arg "--txns" v);
        parse rest
    | "--ops" :: v :: rest ->
        ops := max 1 (int_arg "--ops" v);
        parse rest
    | "--pbound" :: v :: rest ->
        pbound := int_arg "--pbound" v;
        parse rest
    | "--executions" :: v :: rest ->
        executions := Some (int_arg "--executions" v);
        parse rest
    | "--depth" :: v :: rest ->
        depth := max 1 (int_arg "--depth" v);
        parse rest
    | "--sites" :: v :: rest ->
        (match v with
        | "persist" -> sites := `Persist
        | "every" -> sites := `Every
        | _ ->
            prerr_endline ("explore: unknown site filter " ^ v);
            exit 2);
        parse rest
    | "--max-sites" :: v :: rest ->
        max_sites := Some (int_arg "--max-sites" v);
        parse rest
    | "--persistent" :: rest ->
        persistent := true;
        parse rest
    | "--no-sanitize" :: rest ->
        sanitize := false;
        parse rest
    | "--plant" :: v :: rest ->
        (match v with
        | "durability" -> fault := E.Durability_hole
        | "lost-update" -> fault := E.Lost_update
        | "stale-dedup" -> fault := E.Stale_dedup
        | "torn-commit-record" -> fault := E.Torn_commit_record
        | "torn-batch-record" -> fault := E.Torn_batch_record
        | "stale-ro-snapshot" -> fault := E.Stale_ro_snapshot
        | "torn-migration" -> fault := E.Torn_migration
        | _ ->
            prerr_endline ("explore: unknown fault " ^ v);
            exit 2);
        parse rest
    | "--max-steps" :: v :: rest ->
        max_steps := max 1 (int_arg "--max-steps" v);
        parse rest
    | "--no-shrink" :: rest ->
        do_shrink := false;
        parse rest
    | "--out" :: v :: rest ->
        out := Some v;
        parse rest
    | "--replay" :: v :: rest ->
        replay_file := Some v;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ ->
        prerr_endline ("explore: unknown argument " ^ arg);
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if
    (!fault = E.Torn_commit_record
    || !fault = E.Torn_batch_record
    || !fault = E.Torn_migration)
    && !shards < 2
  then begin
    prerr_endline
      "explore: the torn-record and torn-migration faults need --shards >= 2 \
       (--plant torn-commit-record | torn-batch-record | torn-migration)";
    exit 2
  end;

  (* --- replay mode ------------------------------------------------- *)
  (match !replay_file with
  | Some path ->
      let f =
        try E.failure_of_json (J.read_file path)
        with
        | Sys_error msg ->
            prerr_endline ("explore: " ^ msg);
            exit 2
        | J.Parse_error msg ->
            prerr_endline ("explore: " ^ path ^ ": " ^ msg);
            exit 2
      in
      Format.printf "replaying %s:@.%a" path E.pp_failure f;
      (match E.replay f with
      | Some reason ->
          Format.printf "replay still fails: %s@." reason;
          exit 1
      | None ->
          Format.printf "replay passes (failure no longer reproduces)@.";
          exit 0)
  | None -> ());

  (* --- exploration mode -------------------------------------------- *)
  let config =
    {
      E.default with
      E.wf = !wf;
      threads = !threads;
      shards = !shards;
      persistent = !persistent;
      sanitize = !sanitize;
      fault = !fault;
      max_steps = !max_steps;
    }
  in
  let find prog =
    let r =
      match !strategy with
      | "exhaustive" ->
          E.explore_exhaustive ~config ~preemption_bound:!pbound
            ?max_executions:!executions prog
      | "pct" ->
          E.explore_pct ~config ~depth:!depth
            ?executions:!executions ~seed:!seed prog
      | _ ->
          E.explore_crashes ~config ~sites:!sites ?max_sites:!max_sites prog
    in
    r
  in
  let failed = ref false in
  let s = !seed in
  (try
     for seed = s to s + !seeds - 1 do
       let prog =
         Proggen.gen_program ~max_txns:!txns ~max_ops:!ops
           ~transfers:(!shards > 1) seed
       in
       Format.printf "seed %d: %d transactions on %d threads, %s%s%s...@." seed
         (List.length prog) !threads
         (if !wf then "OneFile-WF" else "OneFile-LF")
         (if !shards > 1 then Printf.sprintf " over %d shards" !shards else "")
         (match !fault with
         | E.No_fault -> ""
         | E.Durability_hole -> " (planted: durability-hole)"
         | E.Lost_update -> " (planted: lost-update)"
         | E.Stale_dedup -> " (planted: stale-dedup)"
         | E.Torn_commit_record -> " (planted: torn-commit-record)"
         | E.Torn_batch_record -> " (planted: torn-batch-record)"
         | E.Stale_ro_snapshot -> " (planted: stale-ro-snapshot)"
         | E.Torn_migration -> " (planted: torn-migration)");
       let report = find prog in
       Format.printf "%a" E.pp_report report;
       match report.E.failure with
       | None -> ()
       | Some failure ->
           failed := true;
           let failure =
             if !do_shrink then begin
               Format.printf "shrinking...@.";
               let small =
                 E.shrink ~find:(fun p -> (find p).E.failure) failure
               in
               Format.printf "minimal repro:@.%a" E.pp_failure small;
               small
             end
             else failure
           in
           (match !out with
           | Some path ->
               J.write_file path (E.failure_to_json failure);
               Format.printf "trace written to %s (replay with --replay)@."
                 path
           | None -> ());
           raise Exit
     done
   with Exit -> ());
  exit (if !failed then 1 else 0)
